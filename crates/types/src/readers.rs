//! Bit-vector of reading processors.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::ids::{ProcId, MAX_PROCS};

/// Bits per storage word.
const WORD: usize = 64;

/// A set of processors encoded as a bit-vector, one bit per processor.
///
/// This is the representation VMSP uses for a read sequence ("much as a
/// full-map directory maintains the identity of multiple readers of a
/// block", paper §3.1) and the representation the full-map directory uses
/// for its sharer list.
///
/// # Hybrid storage
///
/// The set is a **hybrid bitset**: processors `P0..P63` live in one
/// inline `u64` (`lo`), and only a set that actually contains a
/// processor `P64` or above *spills* to a heap-allocated word array
/// (`hi`). The paper's 16-node machine — and every machine up to 64
/// nodes — therefore pays exactly what the former plain-`u64`
/// representation paid: 16 inline bytes, no allocation, word-parallel
/// set algebra. Machines beyond 64 processors (up to [`MAX_PROCS`]) get
/// the same API with per-word operations over the spilled array.
///
/// The spill is kept **canonical**: `hi` is `Some` only while at least
/// one bit ≥ 64 is set, and never has trailing all-zero words. Equality
/// and hashing can therefore be derived structurally.
///
/// Supports up to [`MAX_PROCS`] processors.
///
/// # Example
///
/// ```
/// use specdsm_types::{ProcId, ReaderSet};
///
/// let mut readers = ReaderSet::new();
/// readers.insert(ProcId(1));
/// readers.insert(ProcId(2));
/// assert_eq!(readers.len(), 2);
/// assert!(readers.contains(ProcId(1)));
/// assert_eq!(readers.to_string(), "{P1,P2}");
///
/// let others = ReaderSet::from_iter([ProcId(2), ProcId(3)]);
/// assert_eq!((readers.clone() | others.clone()).len(), 3);
/// assert_eq!((readers.clone() & others.clone()), ReaderSet::single(ProcId(2)));
/// assert_eq!((readers - others), ReaderSet::single(ProcId(1)));
///
/// // Wide sets spill transparently.
/// let wide = ReaderSet::from_iter([ProcId(3), ProcId(700)]);
/// assert!(wide.contains(ProcId(700)));
/// assert_eq!(wide.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ReaderSet {
    /// Processors `P0..P63`, one bit each (the inline fast path).
    lo: u64,
    /// Processors `P64..`: word `j` holds `P(64 + 64j) .. P(127 + 64j)`.
    /// Canonical: `Some` only with a non-zero last word.
    hi: Option<Box<[u64]>>,
}

impl ReaderSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        ReaderSet { lo: 0, hi: None }
    }

    /// A set containing exactly one processor.
    ///
    /// # Panics
    ///
    /// Panics if `p.0 >= MAX_PROCS`.
    #[must_use]
    pub fn single(p: ProcId) -> Self {
        let mut s = ReaderSet::new();
        s.insert(p);
        s
    }

    /// The set of all processors `P0..Pn`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCS`.
    #[must_use]
    pub fn all(n: usize) -> Self {
        assert!(n <= MAX_PROCS, "at most {MAX_PROCS} processors supported");
        let mut s = ReaderSet::new();
        if n == 0 {
            return s;
        }
        if n <= WORD {
            s.lo = full_word(n);
            return s;
        }
        s.lo = u64::MAX;
        let rest = n - WORD;
        let words = rest.div_ceil(WORD);
        let mut hi = vec![u64::MAX; words];
        let tail = rest % WORD;
        if tail != 0 {
            hi[words - 1] = full_word(tail);
        }
        s.hi = Some(hi.into_boxed_slice());
        s
    }

    /// Word `w` of the bit-vector (word 0 is `lo`).
    #[inline]
    fn word(&self, w: usize) -> u64 {
        if w == 0 {
            self.lo
        } else {
            self.hi
                .as_deref()
                .and_then(|hi| hi.get(w - 1))
                .copied()
                .unwrap_or(0)
        }
    }

    /// Number of words the set occupies (≥ 1; word 0 is `lo`).
    #[inline]
    fn words(&self) -> usize {
        1 + self.hi.as_deref().map_or(0, <[u64]>::len)
    }

    /// Restores the canonical form after an operation that may have
    /// cleared spilled bits: trims trailing zero words and drops an
    /// all-zero spill entirely.
    fn canonicalize(&mut self) {
        if let Some(hi) = self.hi.as_deref() {
            let keep = hi.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
            if keep == 0 {
                self.hi = None;
            } else if keep < hi.len() {
                self.hi = Some(hi[..keep].to_vec().into_boxed_slice());
            }
        }
    }

    /// Adds `p`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `p.0 >= MAX_PROCS`.
    #[inline]
    pub fn insert(&mut self, p: ProcId) -> bool {
        assert!(p.0 < MAX_PROCS, "processor id {} out of range", p.0);
        if p.0 < WORD {
            let bit = 1u64 << p.0;
            let fresh = self.lo & bit == 0;
            self.lo |= bit;
            return fresh;
        }
        let word = (p.0 - WORD) / WORD;
        let bit = 1u64 << ((p.0 - WORD) % WORD);
        let hi = self.hi.take().map_or_else(Vec::new, Vec::from);
        let mut hi = hi;
        if hi.len() <= word {
            hi.resize(word + 1, 0);
        }
        let fresh = hi[word] & bit == 0;
        hi[word] |= bit;
        self.hi = Some(hi.into_boxed_slice());
        fresh
    }

    /// Removes `p`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, p: ProcId) -> bool {
        if p.0 >= MAX_PROCS {
            return false;
        }
        if p.0 < WORD {
            let bit = 1u64 << p.0;
            let present = self.lo & bit != 0;
            self.lo &= !bit;
            return present;
        }
        let word = (p.0 - WORD) / WORD;
        let bit = 1u64 << ((p.0 - WORD) % WORD);
        let Some(hi) = self.hi.as_deref_mut() else {
            return false;
        };
        let Some(w) = hi.get_mut(word) else {
            return false;
        };
        let present = *w & bit != 0;
        *w &= !bit;
        if present {
            self.canonicalize();
        }
        present
    }

    /// Whether `p` is in the set.
    #[must_use]
    #[inline]
    pub fn contains(&self, p: ProcId) -> bool {
        if p.0 >= MAX_PROCS {
            return false;
        }
        if p.0 < WORD {
            return self.lo & (1u64 << p.0) != 0;
        }
        self.word(p.0 / WORD) & (1u64 << (p.0 % WORD)) != 0
    }

    /// Removes and returns the smallest member, or `None` if empty.
    /// Destructive ascending iteration without borrowing the set — the
    /// protocol's invalidation/forwarding loops use it to fan out while
    /// mutating other engine state.
    #[inline]
    pub fn pop_first(&mut self) -> Option<ProcId> {
        if self.lo != 0 {
            let i = self.lo.trailing_zeros() as usize;
            self.lo &= self.lo - 1;
            return Some(ProcId(i));
        }
        let hi = self.hi.as_deref_mut()?;
        let (w, word) = hi
            .iter_mut()
            .enumerate()
            .find(|(_, w)| **w != 0)
            .expect("canonical spill holds at least one bit");
        let i = word.trailing_zeros() as usize;
        *word &= *word - 1;
        let p = ProcId(WORD + w * WORD + i);
        self.canonicalize();
        Some(p)
    }

    /// Number of processors in the set.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        let spilled: u32 = self
            .hi
            .as_deref()
            .map_or(0, |hi| hi.iter().map(|w| w.count_ones()).sum());
        self.lo.count_ones() as usize + spilled as usize
    }

    /// Whether the set is empty.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        // Canonical form: a present spill always carries at least one bit.
        self.lo == 0 && self.hi.is_none()
    }

    /// Whether `other` is a subset of `self`.
    #[must_use]
    pub fn is_superset(&self, other: &ReaderSet) -> bool {
        (0..other.words()).all(|w| {
            let o = other.word(w);
            self.word(w) & o == o
        })
    }

    /// Iterates processors in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.words()).flat_map(move |w| {
            let mut bits = self.word(w);
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(ProcId(w * WORD + i))
            })
        })
    }

    /// Whether the set has spilled past the inline word, i.e. holds a
    /// processor `P64` or above. Canonical form makes this equivalent
    /// to "owns a heap allocation".
    #[must_use]
    #[inline]
    pub fn has_spill(&self) -> bool {
        self.hi.is_some()
    }

    /// Heap bytes owned by the spill allocation — `0` for inline sets.
    /// This is the per-copy cost the storage report must charge for
    /// every retained clone of a wide set.
    #[must_use]
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.hi.as_deref().map_or(0, std::mem::size_of_val)
    }

    /// The spilled words (empty for inline sets); word `j` holds
    /// `P(64 + 64j) .. P(127 + 64j)`.
    #[inline]
    pub(crate) fn spill(&self) -> &[u64] {
        self.hi.as_deref().unwrap_or(&[])
    }

    /// The low 64 bits of the bit-vector (bit `i` set iff `ProcId(i)`,
    /// `i < 64`, is a member). For sets confined to the inline word —
    /// every machine up to 64 processors — this is the complete raw
    /// representation, exactly as before the hybrid rework; spilled
    /// bits are not visible here (see [`ReaderSet::mix64`] for a
    /// full-width digest).
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.lo
    }

    /// Builds a set of processors `P0..P63` from a raw bit-vector.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        ReaderSet { lo: bits, hi: None }
    }

    /// A stable 64-bit digest of the **whole** vector, for hashing into
    /// predictor pattern keys. For an inline set this is exactly
    /// [`ReaderSet::bits`] (so pattern-table keys for machines up to 64
    /// processors are unchanged by the hybrid rework); a spilled set
    /// folds every word through an odd-multiplier mix so that sets
    /// differing only in high processors keep distinct digests.
    #[must_use]
    pub fn mix64(&self) -> u64 {
        match self.hi.as_deref() {
            None => self.lo,
            Some(hi) => {
                let mut acc = self.lo;
                for &w in hi {
                    acc = acc
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(w)
                        .rotate_left(23);
                }
                acc
            }
        }
    }

    /// Word-wise binary operation; `trim` restores canonical form for
    /// operations that can clear bits (intersection, difference).
    fn zip_words(&self, rhs: &ReaderSet, f: impl Fn(u64, u64) -> u64, trim: bool) -> ReaderSet {
        let words = self.words().max(rhs.words());
        let mut out = ReaderSet {
            lo: f(self.lo, rhs.lo),
            hi: None,
        };
        if words > 1 {
            let hi: Vec<u64> = (1..words).map(|w| f(self.word(w), rhs.word(w))).collect();
            out.hi = Some(hi.into_boxed_slice());
            if trim {
                out.canonicalize();
            } else {
                debug_assert_ne!(out.hi.as_deref().and_then(|h| h.last()), Some(&0));
            }
        }
        out
    }
}

impl PartialOrd for ReaderSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReaderSet {
    /// Orders sets as big-endian integers over their bit-vectors — for
    /// inline sets this is exactly the former `u64` ordering.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let words = self.words().max(other.words());
        for w in (0..words).rev() {
            match self.word(w).cmp(&other.word(w)) {
                std::cmp::Ordering::Equal => {}
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

/// A word with the lowest `n` (1 ≤ n ≤ 64) bits set.
fn full_word(n: usize) -> u64 {
    if n >= WORD {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $f:expr, $trim:expr) => {
        impl $trait for ReaderSet {
            type Output = ReaderSet;
            fn $method(self, rhs: ReaderSet) -> ReaderSet {
                self.zip_words(&rhs, $f, $trim)
            }
        }
        impl $trait<&ReaderSet> for ReaderSet {
            type Output = ReaderSet;
            fn $method(self, rhs: &ReaderSet) -> ReaderSet {
                self.zip_words(rhs, $f, $trim)
            }
        }
        impl $trait for &ReaderSet {
            type Output = ReaderSet;
            fn $method(self, rhs: &ReaderSet) -> ReaderSet {
                self.zip_words(rhs, $f, $trim)
            }
        }
        impl $trait<ReaderSet> for &ReaderSet {
            type Output = ReaderSet;
            fn $method(self, rhs: ReaderSet) -> ReaderSet {
                self.zip_words(&rhs, $f, $trim)
            }
        }
    };
}

impl_bitop!(BitOr, bitor, |a, b| a | b, false);
impl_bitop!(BitAnd, bitand, |a, b| a & b, true);
// Set difference.
impl_bitop!(Sub, sub, |a, b| a & !b, true);

impl BitOrAssign for ReaderSet {
    fn bitor_assign(&mut self, rhs: ReaderSet) {
        *self = std::mem::take(self) | rhs;
    }
}

impl BitOrAssign<&ReaderSet> for ReaderSet {
    fn bitor_assign(&mut self, rhs: &ReaderSet) {
        *self = std::mem::take(self) | rhs;
    }
}

impl FromIterator<ProcId> for ReaderSet {
    fn from_iter<I: IntoIterator<Item = ProcId>>(iter: I) -> Self {
        let mut s = ReaderSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcId> for ReaderSet {
    fn extend<I: IntoIterator<Item = ProcId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl fmt::Display for ReaderSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ReaderSet::new();
        assert!(s.is_empty());
        assert!(s.insert(ProcId(3)));
        assert!(!s.insert(ProcId(3)), "second insert is not fresh");
        assert!(s.contains(ProcId(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(ProcId(3)));
        assert!(!s.remove(ProcId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn insert_remove_contains_spilled() {
        let mut s = ReaderSet::new();
        assert!(s.insert(ProcId(64)));
        assert!(s.insert(ProcId(1023)));
        assert!(!s.insert(ProcId(1023)));
        assert!(s.contains(ProcId(64)));
        assert!(s.contains(ProcId(1023)));
        assert!(!s.contains(ProcId(512)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(ProcId(1023)));
        assert!(s.remove(ProcId(64)));
        assert!(s.is_empty(), "spill fully trimmed");
        assert_eq!(s, ReaderSet::new(), "canonical empty form");
    }

    #[test]
    fn canonical_form_after_high_bit_removal() {
        // Removing the only spilled bit must restore the inline-only
        // representation, or equality with an inline-built set breaks.
        let mut a = ReaderSet::from_iter([ProcId(2), ProcId(200)]);
        a.remove(ProcId(200));
        let b = ReaderSet::single(ProcId(2));
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let digest = |s: &ReaderSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn all_covers_range() {
        let s = ReaderSet::all(16);
        assert_eq!(s.len(), 16);
        assert!(s.contains(ProcId(0)));
        assert!(s.contains(ProcId(15)));
        assert!(!s.contains(ProcId(16)));
        assert_eq!(ReaderSet::all(MAX_PROCS).len(), MAX_PROCS);
        for n in [63usize, 64, 65, 128, 129, 1000] {
            let s = ReaderSet::all(n);
            assert_eq!(s.len(), n, "all({n})");
            assert!(s.contains(ProcId(n - 1)));
            assert!(!s.contains(ProcId(n)));
        }
    }

    #[test]
    fn set_algebra() {
        let a = ReaderSet::from_iter([ProcId(0), ProcId(1)]);
        let b = ReaderSet::from_iter([ProcId(1), ProcId(2)]);
        assert_eq!((a.clone() | b.clone()).len(), 3);
        assert_eq!(a.clone() & b.clone(), ReaderSet::single(ProcId(1)));
        assert_eq!(a.clone() - b.clone(), ReaderSet::single(ProcId(0)));
        assert!((a.clone() | b.clone()).is_superset(&a));
        assert!(!a.is_superset(&b));
    }

    #[test]
    fn set_algebra_across_the_spill_boundary() {
        let a = ReaderSet::from_iter([ProcId(0), ProcId(63), ProcId(64), ProcId(130)]);
        let b = ReaderSet::from_iter([ProcId(63), ProcId(130), ProcId(900)]);
        let union = &a | &b;
        assert_eq!(union.len(), 5);
        assert!(union.is_superset(&a) && union.is_superset(&b));
        let inter = &a & &b;
        assert_eq!(inter, ReaderSet::from_iter([ProcId(63), ProcId(130)]));
        let diff = &a - &b;
        assert_eq!(diff, ReaderSet::from_iter([ProcId(0), ProcId(64)]));
        // Difference that clears every spilled bit trims canonically.
        let wide = ReaderSet::from_iter([ProcId(1), ProcId(999)]);
        let just_high = ReaderSet::single(ProcId(999));
        assert_eq!(&wide - &just_high, ReaderSet::single(ProcId(1)));
        assert_eq!(
            (&wide - &just_high).mix64(),
            ReaderSet::single(ProcId(1)).bits()
        );
    }

    #[test]
    fn iter_ascending() {
        let s = ReaderSet::from_iter([ProcId(9), ProcId(2), ProcId(5)]);
        let got: Vec<usize> = s.iter().map(|p| p.0).collect();
        assert_eq!(got, vec![2, 5, 9]);
        let wide = ReaderSet::from_iter([ProcId(700), ProcId(3), ProcId(65)]);
        let got: Vec<usize> = wide.iter().map(|p| p.0).collect();
        assert_eq!(got, vec![3, 65, 700]);
    }

    #[test]
    fn display_format() {
        let s = ReaderSet::from_iter([ProcId(1), ProcId(2)]);
        assert_eq!(s.to_string(), "{P1,P2}");
        assert_eq!(ReaderSet::new().to_string(), "{}");
        let wide = ReaderSet::from_iter([ProcId(1), ProcId(100)]);
        assert_eq!(wide.to_string(), "{P1,P100}");
    }

    #[test]
    fn bits_round_trip() {
        let s = ReaderSet::from_iter([ProcId(0), ProcId(63)]);
        assert_eq!(ReaderSet::from_bits(s.bits()), s);
    }

    #[test]
    fn mix64_matches_bits_for_inline_sets() {
        for set in [
            ReaderSet::new(),
            ReaderSet::single(ProcId(0)),
            ReaderSet::all(64),
            ReaderSet::from_iter([ProcId(7), ProcId(63)]),
        ] {
            assert_eq!(set.mix64(), set.bits());
        }
    }

    #[test]
    fn mix64_distinguishes_high_bits() {
        let a = ReaderSet::from_iter([ProcId(1), ProcId(64)]);
        let b = ReaderSet::from_iter([ProcId(1), ProcId(65)]);
        let c = ReaderSet::from_iter([ProcId(1), ProcId(128)]);
        assert_ne!(a.mix64(), b.mix64());
        assert_ne!(a.mix64(), c.mix64());
        assert_ne!(b.mix64(), c.mix64());
    }

    #[test]
    fn ordering_matches_u64_order_for_inline_sets() {
        let a = ReaderSet::from_bits(0b0110);
        let b = ReaderSet::from_bits(0b1001);
        assert!(a < b, "inline order is the raw u64 order");
        let wide = ReaderSet::single(ProcId(64));
        assert!(a < wide, "any spilled bit outranks the inline word");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        ReaderSet::new().insert(ProcId(MAX_PROCS));
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!ReaderSet::all(MAX_PROCS).contains(ProcId(MAX_PROCS)));
        assert!(!ReaderSet::all(64).contains(ProcId(64)));
    }

    #[test]
    fn extend_and_or_assign() {
        let mut s = ReaderSet::new();
        s.extend([ProcId(1), ProcId(4)]);
        s |= ReaderSet::single(ProcId(2));
        assert_eq!(s.len(), 3);
        s |= ReaderSet::single(ProcId(99));
        assert_eq!(s.len(), 4);
        assert!(s.contains(ProcId(99)));
    }
}

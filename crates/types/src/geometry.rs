//! Dense slot arithmetic for the page-interleaved home layout.
//!
//! Homes are assigned page-interleaved ([`MachineConfig::home_of`]), so
//! the blocks homed at one node form a regular lattice in the address
//! space: page `k * num_nodes + home`, blocks `page * page_blocks ..`.
//! Any per-home state store (the protocol's directory block tables, the
//! speculation engine's VMSP arena) can therefore map a block to a
//! compact local index **arithmetically** — no hashing, no probing —
//! and index a flat table directly. [`HomeGeometry`] is that shared
//! mapping, so every slot-addressed store in the workspace resolves
//! blocks with the same bijection and the same power-of-two fast path.

use serde::{Deserialize, Serialize};

use crate::addr::BlockAddr;
use crate::config::MachineConfig;
use crate::ids::NodeId;

/// The page-interleaved home layout as pure slot arithmetic.
///
/// For a machine with `num_nodes` homes and `page_blocks` blocks per
/// page, block `b` is homed at `(b / page_blocks) % num_nodes` and its
/// dense local slot at that home is
///
/// ```text
/// slot(b) = (b / (page_blocks * num_nodes)) * page_blocks  +  b % page_blocks
///           └───────── local page number ─────────┘          └─ offset in page ─┘
/// ```
///
/// which is a bijection from each home's blocks onto `0, 1, 2, …`.
/// When both `page_blocks` and the stride are powers of two (the paper
/// machine: 128 blocks/page × 16 nodes) the divisions reduce to shifts
/// and masks.
///
/// # Example
///
/// ```
/// use specdsm_types::{BlockAddr, HomeGeometry, MachineConfig, NodeId};
///
/// let m = MachineConfig::paper_machine();
/// let g = HomeGeometry::of_machine(&m);
/// let b = m.page_on(NodeId(3), 2).offset(5);
/// assert_eq!(g.home_of(b), NodeId(3));
/// // slot_of / block_at round-trip.
/// let slot = g.local_index(b);
/// assert_eq!(g.block_at(NodeId(3), slot), b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomeGeometry {
    /// Blocks per page.
    page_blocks: u64,
    /// Homes in rotation.
    num_nodes: usize,
    /// `page_blocks * num_nodes`: the address stride between one home's
    /// consecutive pages.
    stride: u64,
    /// `(page_shift, stride_shift)` when both `page_blocks` and
    /// `stride` are powers of two.
    shifts: Option<(u32, u32)>,
}

impl HomeGeometry {
    /// Creates the geometry for `page_blocks` blocks per page
    /// interleaved over `num_nodes` homes.
    ///
    /// # Panics
    ///
    /// Panics if `page_blocks` or `num_nodes` is zero.
    #[must_use]
    pub fn new(page_blocks: u64, num_nodes: usize) -> Self {
        assert!(page_blocks > 0, "page_blocks must be positive");
        assert!(num_nodes > 0, "num_nodes must be positive");
        let stride = page_blocks * num_nodes as u64;
        let shifts = (page_blocks.is_power_of_two() && stride.is_power_of_two())
            .then(|| (page_blocks.trailing_zeros(), stride.trailing_zeros()));
        HomeGeometry {
            page_blocks,
            num_nodes,
            stride,
            shifts,
        }
    }

    /// The geometry of `machine`'s home layout.
    #[must_use]
    pub fn of_machine(machine: &MachineConfig) -> Self {
        Self::new(machine.page_blocks, machine.num_nodes)
    }

    /// Homes in rotation.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Blocks per page.
    #[must_use]
    pub fn page_blocks(&self) -> u64 {
        self.page_blocks
    }

    /// Home node of `block` (identical to [`MachineConfig::home_of`]).
    #[must_use]
    pub fn home_of(&self, block: BlockAddr) -> NodeId {
        if let Some((page_shift, _)) = self.shifts {
            let mask = (self.stride >> page_shift) - 1;
            NodeId(((block.0 >> page_shift) & mask) as usize)
        } else {
            NodeId(((block.0 / self.page_blocks) % self.num_nodes as u64) as usize)
        }
    }

    /// Whether `block` is homed at `home`.
    #[must_use]
    pub fn is_homed(&self, home: NodeId, block: BlockAddr) -> bool {
        self.home_of(block) == home
    }

    /// Dense table index of `block` **within its own home's table**.
    ///
    /// Only meaningful for the home [`HomeGeometry::home_of`] reports:
    /// indexing another home's table with this value aliases a foreign
    /// block onto an unrelated local slot. Guarded callers check
    /// [`HomeGeometry::is_homed`] first.
    #[must_use]
    pub fn local_index(&self, block: BlockAddr) -> usize {
        if let Some((page_shift, stride_shift)) = self.shifts {
            let local_page = block.0 >> stride_shift;
            ((local_page << page_shift) | (block.0 & ((1 << page_shift) - 1))) as usize
        } else {
            let local_page = block.0 / self.stride;
            (local_page * self.page_blocks + block.0 % self.page_blocks) as usize
        }
    }

    /// Inverse of [`HomeGeometry::local_index`]: the block address of
    /// slot `idx` in `home`'s table.
    #[must_use]
    pub fn block_at(&self, home: NodeId, idx: usize) -> BlockAddr {
        let idx = idx as u64;
        let local_page = idx / self.page_blocks;
        let offset = idx % self.page_blocks;
        BlockAddr(local_page * self.stride + home.0 as u64 * self.page_blocks + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_machine_home_mapping() {
        for nodes in [1usize, 3, 4, 16] {
            let m = MachineConfig::with_nodes(nodes);
            let g = HomeGeometry::of_machine(&m);
            for b in (0..10_000u64).step_by(37) {
                assert_eq!(g.home_of(BlockAddr(b)), m.home_of(BlockAddr(b)));
            }
        }
    }

    #[test]
    fn shift_and_division_paths_agree() {
        // The paper machine has power-of-two geometry (shift path); a
        // 3-node machine falls back to divisions. Both must agree with
        // a third, naive computation.
        for (page_blocks, nodes) in [(128u64, 16usize), (128, 3), (100, 4), (1, 1)] {
            let g = HomeGeometry::new(page_blocks, nodes);
            for b in (0..50_000u64).step_by(101) {
                let naive_home = ((b / page_blocks) % nodes as u64) as usize;
                let naive_idx = (b / (page_blocks * nodes as u64)) * page_blocks + b % page_blocks;
                assert_eq!(g.home_of(BlockAddr(b)).0, naive_home);
                assert_eq!(g.local_index(BlockAddr(b)), naive_idx as usize);
            }
        }
    }

    #[test]
    fn local_index_round_trips() {
        let g = HomeGeometry::new(128, 16);
        let m = MachineConfig::paper_machine();
        for node in [0usize, 3, 15] {
            for page in 0..4 {
                for off in [0, 1, 127] {
                    let b = m.page_on(NodeId(node), page).offset(off);
                    let idx = g.local_index(b);
                    assert_eq!(g.block_at(NodeId(node), idx), b);
                }
            }
        }
    }

    #[test]
    fn local_indices_are_compact_per_home() {
        let g = HomeGeometry::new(8, 4);
        let mut seen = std::collections::HashSet::new();
        // Three pages homed at node 2: blocks of pages 2, 6, 10.
        for page in [2u64, 6, 10] {
            for off in 0..8 {
                let b = BlockAddr(page * 8 + off);
                assert_eq!(g.home_of(b), NodeId(2));
                assert!(seen.insert(g.local_index(b)));
            }
        }
        assert_eq!(seen.len(), 24);
        assert_eq!(seen.iter().max(), Some(&23));
    }

    #[test]
    fn foreign_blocks_are_detected() {
        let g = HomeGeometry::new(128, 16);
        let foreign = BlockAddr(128); // first block of page 1, homed at node 1
        assert!(!g.is_homed(NodeId(0), foreign));
        assert!(g.is_homed(NodeId(1), foreign));
        // Its local index *would* alias slot 0 — the guard exists
        // because the arithmetic alone cannot tell.
        assert_eq!(g.local_index(foreign), 0);
    }

    #[test]
    #[should_panic(expected = "page_blocks")]
    fn zero_page_blocks_panics() {
        let _ = HomeGeometry::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "num_nodes")]
    fn zero_nodes_panics() {
        let _ = HomeGeometry::new(8, 0);
    }
}

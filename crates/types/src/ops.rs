//! The processor operation vocabulary shared by workload generators and
//! the protocol simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::BlockAddr;

/// Identifier of a synchronization lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LockId(pub u32);

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One operation in a processor's instruction stream.
///
/// Workload generators emit a lazy stream of these per processor; the
/// protocol simulator executes them on a blocking in-order processor
/// model. Synchronization (barriers, locks) is handled by dedicated
/// managers rather than through shared memory, and the time spent
/// waiting on it is accounted as computation time — matching the
/// paper's Figure 9 breakdown ("computation time including barrier
/// synchronization and spinning on locks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Compute for the given number of cycles.
    Compute(u64),
    /// Read one coherence block.
    Read(BlockAddr),
    /// Write one coherence block.
    Write(BlockAddr),
    /// Wait at the global barrier until all processors arrive.
    Barrier,
    /// Acquire a lock (FIFO queueing).
    Lock(LockId),
    /// Release a lock.
    ///
    /// Releasing a lock the processor does not hold is a workload bug
    /// and the simulator will panic.
    Unlock(LockId),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute(n) => write!(f, "compute({n})"),
            Op::Read(b) => write!(f, "read({b})"),
            Op::Write(b) => write!(f, "write({b})"),
            Op::Barrier => write!(f, "barrier"),
            Op::Lock(l) => write!(f, "lock({l})"),
            Op::Unlock(l) => write!(f, "unlock({l})"),
        }
    }
}

/// A lazy per-processor operation stream.
///
/// Streams are `Send` so the sharded protocol engine can move each
/// processor (and its pending stream) onto a worker thread.
pub type OpStream = Box<dyn Iterator<Item = Op> + Send>;

/// A multiprocessor workload: a factory for one [`OpStream`] per
/// processor.
///
/// Building the streams must be deterministic: the simulator builds a
/// fresh set for each system configuration (Base-, FR-, SWI-DSM) so all
/// three run the identical program.
pub trait Workload {
    /// Short name (used in reports, e.g. `"em3d"`).
    fn name(&self) -> &str;

    /// Number of processors the workload is written for.
    fn num_procs(&self) -> usize;

    /// Builds the operation streams, indexed by processor id.
    fn build_streams(&self) -> Vec<OpStream>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoProcPingPong;

    impl Workload for TwoProcPingPong {
        fn name(&self) -> &str {
            "pingpong"
        }
        fn num_procs(&self) -> usize {
            2
        }
        fn build_streams(&self) -> Vec<OpStream> {
            (0..2)
                .map(|p| {
                    let ops = vec![
                        Op::Compute(10),
                        if p == 0 {
                            Op::Write(BlockAddr(1))
                        } else {
                            Op::Read(BlockAddr(1))
                        },
                        Op::Barrier,
                    ];
                    Box::new(ops.into_iter()) as OpStream
                })
                .collect()
        }
    }

    #[test]
    fn workload_builds_streams() {
        let w = TwoProcPingPong;
        let streams = w.build_streams();
        assert_eq!(streams.len(), w.num_procs());
        for s in streams {
            assert_eq!(s.count(), 3);
        }
    }

    #[test]
    fn rebuilding_streams_is_deterministic() {
        let w = TwoProcPingPong;
        let a: Vec<Vec<Op>> = w
            .build_streams()
            .into_iter()
            .map(Iterator::collect)
            .collect();
        let b: Vec<Vec<Op>> = w
            .build_streams()
            .into_iter()
            .map(Iterator::collect)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn op_display() {
        assert_eq!(Op::Compute(5).to_string(), "compute(5)");
        assert_eq!(Op::Read(BlockAddr(16)).to_string(), "read(0x10)");
        assert_eq!(Op::Lock(LockId(2)).to_string(), "lock(L2)");
        assert_eq!(Op::Barrier.to_string(), "barrier");
    }
}

//! Machine configuration (paper Table 1).

use serde::{Deserialize, Serialize};

use crate::addr::BlockAddr;
use crate::error::ConfigError;
use crate::ids::{NodeId, MAX_PROCS};

/// Number of nodes in the paper's simulated machine (Table 1).
pub const PAPER_NODES: usize = 16;

/// Coherence block size in bytes (paper §6: 32-byte coherence blocks).
pub const PAPER_BLOCK_BYTES: usize = 32;

/// All latencies of the simulated machine, in processor cycles.
///
/// The defaults are calibrated against the paper's Table 1: a 104-cycle
/// local memory / remote-cache access, an 80-cycle network hop, and
/// injection/delivery overheads (bus crossing + network-interface
/// processing) chosen so that a clean two-hop remote read miss costs
/// exactly 418 cycles round trip, for a remote-to-local access ratio of
/// roughly 4.
///
/// # Example
///
/// ```
/// use specdsm_types::LatencyConfig;
/// let lat = LatencyConfig::default();
/// assert_eq!(lat.one_way(), 157);
/// assert_eq!(2 * lat.one_way() + lat.mem_access, 418);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Processor cache hit latency.
    pub cache_hit: u64,
    /// Local memory / remote cache access time (Table 1: 104 cycles).
    pub mem_access: u64,
    /// Point-to-point network latency (Table 1: 80 cycles).
    pub net_hop: u64,
    /// Message injection overhead at the sender (bus crossing plus
    /// network-interface processing).
    pub inject: u64,
    /// Message delivery overhead at the receiver.
    pub deliver: u64,
    /// Cycles a message occupies a network interface (contention is
    /// modeled at the network interfaces, paper §6).
    pub ni_occupancy: u64,
    /// Cycles a memory access occupies the memory/bus resource. The
    /// paper's machine uses a 100 MHz *split-transaction* bus
    /// (Table 1), so accesses pipeline: occupancy (one 32-byte block
    /// over the bus, ~24 processor cycles) is much smaller than the
    /// 104-cycle access latency.
    pub mem_occupancy: u64,
    /// Maximum extra cycles a cache controller takes to answer an
    /// invalidation (uniform, deterministic per event). Models the
    /// controller competing with its processor for the cache — the
    /// reason overlapped invalidation acks "arrive in any arbitrary
    /// order" (paper §3) and perturb a general message predictor.
    pub ack_jitter: u64,
}

impl LatencyConfig {
    /// One-way latency of a message between two distinct nodes,
    /// excluding contention: injection + network hop + delivery.
    #[must_use]
    pub fn one_way(&self) -> u64 {
        self.inject + self.net_hop + self.deliver
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            cache_hit: 1,
            mem_access: 104,
            net_hop: 80,
            inject: 38,
            deliver: 39,
            ni_occupancy: 8,
            mem_occupancy: 24,
            ack_jitter: 48,
        }
    }
}

/// Configuration of the simulated CC-NUMA machine.
///
/// [`MachineConfig::paper_machine`] reproduces the paper's Table 1:
/// sixteen nodes, one processor per node, 32-byte coherence blocks,
/// a ~418-cycle remote read round trip and a remote-to-local access
/// ratio of about four.
///
/// # Example
///
/// ```
/// use specdsm_types::MachineConfig;
///
/// let m = MachineConfig::paper_machine();
/// assert_eq!(m.num_nodes, 16);
/// assert_eq!(m.remote_read_round_trip(), 418);
/// assert!((m.remote_to_local_ratio() - 4.0).abs() < 0.1);
/// m.validate().expect("paper machine is valid");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of DSM nodes (= processors; one processor per node).
    pub num_nodes: usize,
    /// Coherence block size in bytes (used only for storage accounting).
    pub block_bytes: usize,
    /// Blocks per page; homes are assigned page-interleaved, so a region
    /// allocator can place data on a chosen home node.
    pub page_blocks: u64,
    /// All latency parameters.
    pub latency: LatencyConfig,
}

impl MachineConfig {
    /// The machine of the paper's Table 1 (16 nodes).
    #[must_use]
    pub fn paper_machine() -> Self {
        MachineConfig {
            num_nodes: PAPER_NODES,
            block_bytes: PAPER_BLOCK_BYTES,
            page_blocks: 128,
            latency: LatencyConfig::default(),
        }
    }

    /// A machine with a different node count but otherwise paper
    /// parameters; useful for scaling sweeps.
    #[must_use]
    pub fn with_nodes(num_nodes: usize) -> Self {
        MachineConfig {
            num_nodes,
            ..Self::paper_machine()
        }
    }

    /// Checks the structural invariants of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the node count is zero or exceeds
    /// [`MAX_PROCS`], if the page size is zero, or if any critical
    /// latency is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_nodes == 0 {
            return Err(ConfigError::NoNodes);
        }
        if self.num_nodes > MAX_PROCS {
            return Err(ConfigError::TooManyNodes {
                requested: self.num_nodes,
                max: MAX_PROCS,
            });
        }
        if self.page_blocks == 0 {
            return Err(ConfigError::ZeroPageSize);
        }
        if self.latency.one_way() == 0 {
            // Checked before ZeroLatency: the windowed engine's
            // bounded-lag lookahead *is* one_way(), so a zero here
            // would collapse every window to zero lag even if
            // mem_access were fine.
            return Err(ConfigError::ZeroLookahead);
        }
        if self.latency.mem_access == 0 || self.latency.net_hop == 0 {
            return Err(ConfigError::ZeroLatency);
        }
        Ok(())
    }

    /// Home node of a block: pages are interleaved across nodes.
    #[must_use]
    pub fn home_of(&self, block: BlockAddr) -> NodeId {
        NodeId(((block.0 / self.page_blocks) % self.num_nodes as u64) as usize)
    }

    /// First block of the `index`-th page homed on `home`.
    ///
    /// Inverse of [`MachineConfig::home_of`]: the returned address and
    /// the following `page_blocks - 1` addresses all map to `home`.
    #[must_use]
    pub fn page_on(&self, home: NodeId, index: u64) -> BlockAddr {
        let page = index * self.num_nodes as u64 + home.0 as u64;
        BlockAddr(page * self.page_blocks)
    }

    /// Latency of a clean remote read miss (home has the block in state
    /// Idle): request one-way + memory access + reply one-way. With
    /// default latencies this is the paper's 418-cycle round-trip miss
    /// latency.
    #[must_use]
    pub fn remote_read_round_trip(&self) -> u64 {
        2 * self.latency.one_way() + self.latency.mem_access
    }

    /// Remote-to-local access ratio (`rtl` in the analytic model);
    /// about 4 for the default configuration, as in Table 1.
    #[must_use]
    pub fn remote_to_local_ratio(&self) -> f64 {
        self.remote_read_round_trip() as f64 / self.latency.mem_access as f64
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_machine()
    }
}

/// Tuning knobs of the optimistic (Block-STM-style) protocol engine.
///
/// The optimistic engine executes each shard speculatively through a
/// *window* of several lookahead periods (the conservative engine's
/// round is exactly one lookahead), then validates recorded
/// cross-shard read sets against the multi-version message view and
/// re-executes only invalidated shards. `max_passes` bounds that
/// fixpoint; exhausting it aborts the window to the conservative path,
/// so progress never depends on speculation converging.
///
/// The window length is adaptive: it starts at `window_rounds` and an
/// AIMD controller grows it after consecutive committed windows and
/// halves it on aborts, clamped to
/// `[min_window_rounds, max_window_rounds]`. Setting
/// `min_window_rounds == max_window_rounds` pins the window to a fixed
/// size. `shards` optionally groups several home nodes into one shard
/// to amortize per-pass snapshot/validate overhead on small machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimisticConfig {
    /// Initial window length in units of the bounded-lag lookahead
    /// (the one-way network latency). Must lie within
    /// `[min_window_rounds, max_window_rounds]`.
    pub window_rounds: u32,
    /// Lower bound on the adaptive window. Must be at least 2 — a
    /// one-round window is just the conservative engine plus snapshot
    /// overhead.
    pub min_window_rounds: u32,
    /// Upper bound on the adaptive window. Must be at least
    /// `min_window_rounds`.
    pub max_window_rounds: u32,
    /// Maximum execute/validate passes per window before the window
    /// aborts to conservative execution. Must be at least 1.
    pub max_passes: u32,
    /// Number of shards to partition the homes into, or `None` for
    /// one shard per home node. Values above the node count are
    /// clamped; `Some(0)` is rejected. Grouping home nodes
    /// (`shards < nodes`) trades window parallelism for fewer,
    /// larger snapshot/validate passes.
    pub shards: Option<usize>,
}

impl OptimisticConfig {
    /// Checks the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadOptimisticConfig`] if the window
    /// bounds are inverted or below 2, if the initial `window_rounds`
    /// falls outside them, if `max_passes` is zero, or if `shards`
    /// is `Some(0)`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.min_window_rounds < 2 {
            return Err(ConfigError::BadOptimisticConfig {
                reason: "min_window_rounds must be at least 2 lookahead periods",
            });
        }
        if self.max_window_rounds < self.min_window_rounds {
            return Err(ConfigError::BadOptimisticConfig {
                reason: "max_window_rounds must be at least min_window_rounds",
            });
        }
        if self.window_rounds < self.min_window_rounds
            || self.window_rounds > self.max_window_rounds
        {
            return Err(ConfigError::BadOptimisticConfig {
                reason: "window_rounds must lie within [min_window_rounds, max_window_rounds]",
            });
        }
        if self.max_passes == 0 {
            return Err(ConfigError::BadOptimisticConfig {
                reason: "max_passes must be at least 1",
            });
        }
        if self.shards == Some(0) {
            return Err(ConfigError::BadOptimisticConfig {
                reason: "shards must be at least 1 when set",
            });
        }
        Ok(())
    }
}

impl Default for OptimisticConfig {
    fn default() -> Self {
        // Four conservative rounds per window amortizes the snapshot
        // cost well below the re-execution cost on the paper suite;
        // eight passes is far beyond observed convergence (2-3). The
        // adaptive controller may stretch a streak of clean windows to
        // 16 rounds before an abort pulls it back.
        OptimisticConfig {
            window_rounds: 4,
            min_window_rounds: 2,
            max_window_rounds: 16,
            max_passes: 8,
            shards: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcId;

    #[test]
    fn paper_round_trip_is_418() {
        let m = MachineConfig::paper_machine();
        assert_eq!(m.remote_read_round_trip(), 418);
    }

    #[test]
    fn paper_rtl_is_about_4() {
        let m = MachineConfig::paper_machine();
        let rtl = m.remote_to_local_ratio();
        assert!((3.9..=4.1).contains(&rtl), "rtl = {rtl}");
    }

    #[test]
    fn home_mapping_is_page_interleaved() {
        let m = MachineConfig::paper_machine();
        // All blocks within one page share a home.
        let base = BlockAddr(0);
        let home = m.home_of(base);
        for i in 0..m.page_blocks {
            assert_eq!(m.home_of(base.offset(i)), home);
        }
        // Consecutive pages rotate across nodes.
        assert_ne!(m.home_of(BlockAddr(0)), m.home_of(BlockAddr(m.page_blocks)));
    }

    #[test]
    fn page_on_inverts_home_of() {
        let m = MachineConfig::paper_machine();
        for node in 0..m.num_nodes {
            for index in 0..4 {
                let addr = m.page_on(NodeId(node), index);
                assert_eq!(m.home_of(addr), NodeId(node));
                assert_eq!(m.home_of(addr.offset(m.page_blocks - 1)), NodeId(node));
            }
        }
    }

    #[test]
    fn page_on_distinct_pages() {
        let m = MachineConfig::paper_machine();
        let a = m.page_on(NodeId(3), 0);
        let b = m.page_on(NodeId(3), 1);
        assert!(b.0 >= a.0 + m.page_blocks);
    }

    #[test]
    fn non_power_of_two_node_counts_validate_and_map_homes() {
        // 24 and 48 nodes exercise the modulo slow path of the home
        // mapping (the power-of-two shift fast path does not apply);
        // the full address ↔ home ↔ page arithmetic must still be a
        // bijection and pass validation.
        for nodes in [24usize, 48] {
            let m = MachineConfig::with_nodes(nodes);
            m.validate()
                .unwrap_or_else(|e| panic!("{nodes} nodes: {e}"));
            for node in 0..nodes {
                for index in 0..3 {
                    let addr = m.page_on(NodeId(node), index);
                    assert_eq!(m.home_of(addr), NodeId(node), "{nodes} nodes");
                    assert_eq!(
                        m.home_of(addr.offset(m.page_blocks - 1)),
                        NodeId(node),
                        "{nodes} nodes: last block of the page"
                    );
                }
            }
            // Consecutive pages rotate through all homes exactly once.
            let homes: Vec<usize> = (0..nodes as u64)
                .map(|p| m.home_of(BlockAddr(p * m.page_blocks)).0)
                .collect();
            assert_eq!(homes, (0..nodes).collect::<Vec<_>>());
        }
    }

    #[test]
    fn validation_accepts_up_to_max_procs() {
        MachineConfig::with_nodes(MAX_PROCS)
            .validate()
            .expect("MAX_PROCS nodes is the supported maximum");
        let err = MachineConfig::with_nodes(MAX_PROCS + 1)
            .validate()
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("1024"),
            "oversized machine error names the new limit: {msg}"
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut m = MachineConfig::paper_machine();
        m.num_nodes = 0;
        assert_eq!(m.validate(), Err(ConfigError::NoNodes));

        let mut m = MachineConfig::paper_machine();
        m.num_nodes = MAX_PROCS + 1;
        assert!(matches!(
            m.validate(),
            Err(ConfigError::TooManyNodes { .. })
        ));

        let mut m = MachineConfig::paper_machine();
        m.page_blocks = 0;
        assert_eq!(m.validate(), Err(ConfigError::ZeroPageSize));

        let mut m = MachineConfig::paper_machine();
        m.latency.mem_access = 0;
        assert_eq!(m.validate(), Err(ConfigError::ZeroLatency));
    }

    #[test]
    fn validation_rejects_zero_lookahead() {
        // net_hop contributes to one_way(), so one_way() == 0 forces
        // net_hop == 0 as well; the lookahead check must fire first so
        // the error names the real problem, not the generic latency.
        let mut m = MachineConfig::paper_machine();
        m.latency.inject = 0;
        m.latency.net_hop = 0;
        m.latency.deliver = 0;
        assert_eq!(m.validate(), Err(ConfigError::ZeroLookahead));
        let msg = ConfigError::ZeroLookahead.to_string();
        assert!(msg.contains("lookahead"), "{msg}");
        assert!(!msg.ends_with('.'));
        // A nonzero one_way() with zero net_hop still trips the
        // plain latency check.
        let mut m = MachineConfig::paper_machine();
        m.latency.net_hop = 0;
        assert_eq!(m.validate(), Err(ConfigError::ZeroLatency));
    }

    #[test]
    fn default_is_paper_machine() {
        assert_eq!(MachineConfig::default(), MachineConfig::paper_machine());
    }

    #[test]
    fn all_procs_have_in_range_nodes() {
        let m = MachineConfig::with_nodes(8);
        for p in ProcId::all(8) {
            assert!(p.node().0 < m.num_nodes);
        }
    }
}

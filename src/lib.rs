//! # specdsm — Memory Sharing Predictors & a Speculative Coherent DSM
//!
//! A full reproduction of **Lai & Falsafi, "Memory Sharing Predictor:
//! The Key to a Speculative Coherent DSM" (ISCA 26, 1999)** as a Rust
//! workspace:
//!
//! * [`core`] — the paper's contribution: the [`Cosmos`](core::Cosmos)
//!   baseline general message predictor, the [`Msp`](core::Msp) and
//!   [`Vmsp`](core::Vmsp) memory sharing predictors, storage accounting,
//!   and the SWI early-write-invalidate table.
//! * [`protocol`] — the substrate: an event-driven sixteen-node CC-NUMA
//!   with a full-map write-invalidate protocol, plus the speculative
//!   extensions (FR and SWI triggers, reference-bit verification).
//! * [`workloads`] — the seven applications of the paper's Table 2 as
//!   deterministic synthetic kernels, plus micro-patterns.
//! * [`analytic`] — the closed-form performance model (Equations 1–2).
//! * [`sim`] / [`types`] — the discrete-event engine and shared types.
//!
//! The `specdsm-bench` crate regenerates every table and figure of the
//! paper's evaluation (`cargo run --release -p specdsm-bench --bin
//! repro`).
//!
//! # Quickstart
//!
//! Run one application on the three systems the paper compares:
//!
//! ```
//! use specdsm::protocol::{SpecPolicy, System, SystemConfig};
//! use specdsm::types::MachineConfig;
//! use specdsm::workloads::{Em3d, Em3dParams};
//!
//! let machine = MachineConfig::paper_machine();
//! let app = Em3d::new(machine.clone(), Em3dParams::quick());
//! let mut exec = Vec::new();
//! for policy in SpecPolicy::ALL {
//!     let cfg = SystemConfig { machine: machine.clone(), policy, ..SystemConfig::default() };
//!     exec.push(System::new(cfg, &app)?.run().exec_cycles);
//! }
//! // Speculation never slows this producer/consumer kernel down.
//! assert!(exec[1] <= exec[0]);
//! assert!(exec[2] <= exec[0]);
//! # Ok::<(), specdsm::protocol::BuildError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use specdsm_analytic as analytic;
pub use specdsm_core as core;
pub use specdsm_protocol as protocol;
pub use specdsm_sim as sim;
pub use specdsm_types as types;
pub use specdsm_workloads as workloads;

/// Convenience prelude re-exporting the items most programs need.
pub mod prelude {
    pub use specdsm_analytic::ModelParams;
    pub use specdsm_core::{Cosmos, DirectoryTrace, Msp, PredictorKind, SharingPredictor, Vmsp};
    pub use specdsm_protocol::{
        FaultStats, OptimisticStats, RunStats, SpecPolicy, System, SystemConfig,
    };
    pub use specdsm_types::{
        BlockAddr, DirMsg, FaultPlan, MachineConfig, NodeId, Op, OpStream, ProcId, ReaderSet,
        ReqKind, Workload,
    };
    pub use specdsm_workloads::{adversarial_suite, fault_plan, suite, AppId, Scale};
}

//! Deterministic RNG and per-test configuration.

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64: tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's name, so every run of a given
    /// test sees the same input sequence.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name for the seed.
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

//! Offline stand-in for `proptest`.
//!
//! A small, dependency-free property-testing harness with the subset of
//! the proptest API this workspace uses: the [`proptest!`] macro (with
//! optional `#![proptest_config(...)]`), [`prop_assert!`] /
//! [`prop_assert_eq!`], range and tuple strategies, [`collection::vec`],
//! `prop_map`, and [`arbitrary::any`].
//!
//! Differences from the real crate, by design:
//!
//! * Generation is **deterministic**: every test derives its RNG seed
//!   from the test's name, so failures reproduce exactly across runs
//!   and machines (no persistence files needed).
//! * There is **no shrinking**; a failing case panics with the plain
//!   assertion message. Inputs here are small enough to read directly.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

pub use test_runner::ProptestConfig;

/// Property assertion; stands in for proptest's error-returning form by
/// panicking directly (there is no shrinking phase to unwind into).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let g = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let w = crate::collection::vec(0u64..10, 4..=4).generate(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::for_test("map");
        let strat = (0usize..4, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let x = strat.clone().generate(&mut rng);
            assert!((10..24).contains(&x));
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let a: Vec<u64> = (0..10)
            .map(|_| ())
            .scan(TestRng::for_test("t"), |rng, ()| {
                Some(any::<u64>().generate(rng))
            })
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|_| ())
            .scan(TestRng::for_test("t"), |rng, ()| {
                Some(any::<u64>().generate(rng))
            })
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(x in 0usize..10, y in 0usize..10,) {
            prop_assert!(x < 10 && y < 10);
            prop_assert_eq!(x + y, y + x);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(bits in any::<u64>()) {
            prop_assert_eq!(bits.count_ones() + bits.count_zeros(), 64);
        }
    }
}

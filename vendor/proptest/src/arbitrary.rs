//! `any::<T>()` strategies for types with a canonical full-range
//! distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

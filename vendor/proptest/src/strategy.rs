//! The [`Strategy`] trait and the built-in range/tuple/map strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating test inputs of type `Value`.
///
/// Unlike the real proptest (where strategies carry shrinking value
/// trees), a strategy here is just a cloneable generator function.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Endpoint-inclusive up to rounding; the upper endpoint has
        // vanishing probability either way.
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a `vec` length specification.
pub trait SizeRange: Clone {
    /// Picks a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty vec length range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

/// Strategy generating `Vec`s of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// Strategy produced by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

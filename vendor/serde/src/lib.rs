//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names plus the inert
//! derive macros from the sibling `serde_derive` stand-in, so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without network access. Nothing in the workspace currently invokes
//! serialization at runtime; swapping in the real crates requires no
//! source changes outside `vendor/`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

//! Vendored minimal **scoped worker pool**.
//!
//! The build environment is fully offline (see the workspace
//! `vendor/` convention), so instead of `rayon`/`crossbeam` this crate
//! provides the one concurrency primitive the sharded protocol engine
//! needs: run `N` long-lived workers over *borrowed* (non-`'static`)
//! data for the duration of one call, with the caller thread acting as
//! coordinator, and propagate worker panics.
//!
//! Built entirely on [`std::thread::scope`] — no `unsafe`, no
//! dependencies. The workers live for the whole call (one spawn per
//! simulation *run*, not per round); per-round coordination is the
//! caller's business (typically [`std::sync::Barrier`]).
//!
//! # Example
//!
//! ```
//! use scoped_pool::run_with_leader;
//!
//! let mut chunks = vec![vec![1u64, 2], vec![3, 4], vec![5]];
//! let sums: Vec<u64> = run_with_leader(
//!     &mut chunks,
//!     |_idx, chunk| chunk.iter().sum(),
//!     || { /* coordinator runs here, concurrently */ },
//! )
//! .0;
//! assert_eq!(sums, vec![3, 7, 5]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::thread;

/// Runs one worker thread per element of `workers`, each borrowing its
/// element mutably, while `leader` runs on the calling thread. Returns
/// the worker results (in `workers` order) and the leader result once
/// **all** of them finished.
///
/// The worker closure receives `(index, &mut W)`. Workers and leader
/// run concurrently; coordinate them with barriers or channels captured
/// by both closures.
///
/// # Panics
///
/// If a worker panics, the panic is resumed on the calling thread after
/// the scope joins (the std scope guarantees no worker outlives the
/// call). A leader panic propagates directly.
pub fn run_with_leader<W, R, F, L, T>(workers: &mut [W], work: F, leader: L) -> (Vec<R>, T)
where
    W: Send,
    R: Send,
    F: Fn(usize, &mut W) -> R + Sync,
    L: FnOnce() -> T,
{
    thread::scope(|s| {
        let handles: Vec<_> = workers
            .iter_mut()
            .enumerate()
            .map(|(i, w)| {
                let work = &work;
                s.spawn(move || work(i, w))
            })
            .collect();
        let lead = leader();
        let results = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        (results, lead)
    })
}

/// Plain scoped fork-join without a leader: one worker per element,
/// results in element order.
///
/// # Panics
///
/// Worker panics are resumed on the calling thread.
pub fn fork_join<W, R, F>(workers: &mut [W], work: F) -> Vec<R>
where
    W: Send,
    R: Send,
    F: Fn(usize, &mut W) -> R + Sync,
{
    run_with_leader(workers, work, || ()).0
}

/// Splits `items` into `parts` contiguous chunks whose sizes differ by
/// at most one (the static shard→worker partition of the protocol
/// engine). Returns the chunk boundaries as `(start, end)` index pairs;
/// empty chunks are omitted.
#[must_use]
pub fn balanced_partition(items: usize, parts: usize) -> Vec<(usize, usize)> {
    if items == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(items);
    let base = items / parts;
    let extra = items % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, items);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn fork_join_borrows_and_mutates() {
        let mut data = vec![1u64, 10, 100];
        let doubled = fork_join(&mut data, |i, x| {
            *x *= 2;
            (i, *x)
        });
        assert_eq!(data, vec![2, 20, 200]);
        assert_eq!(doubled, vec![(0, 2), (1, 20), (2, 200)]);
    }

    #[test]
    fn leader_runs_concurrently_with_workers() {
        // Workers wait on a barrier only the leader can release: the
        // call can only complete if the leader really runs while the
        // workers are parked.
        let barrier = Barrier::new(3);
        let hits = AtomicU64::new(0);
        let mut workers = vec![(), ()];
        let (_, lead) = run_with_leader(
            &mut workers,
            |_, ()| {
                barrier.wait();
                hits.fetch_add(1, Ordering::SeqCst);
            },
            || {
                barrier.wait();
                "led"
            },
        );
        assert_eq!(lead, "led");
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn worker_results_keep_order() {
        let mut xs: Vec<usize> = (0..17).collect();
        let got = fork_join(&mut xs, |i, x| {
            // Stagger completion so late workers finish first.
            std::thread::sleep(std::time::Duration::from_millis((17 - i) as u64 / 4));
            *x
        });
        assert_eq!(got, (0..17).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker 1 exploded")]
    fn worker_panic_propagates() {
        let mut xs = vec![0, 1, 2];
        fork_join(&mut xs, |_, x| {
            if *x == 1 {
                panic!("worker 1 exploded");
            }
        });
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        assert_eq!(balanced_partition(0, 4), vec![]);
        assert_eq!(balanced_partition(5, 0), vec![]);
        assert_eq!(balanced_partition(3, 8), vec![(0, 1), (1, 2), (2, 3)]);
        let parts = balanced_partition(64, 3);
        assert_eq!(parts, vec![(0, 22), (22, 43), (43, 64)]);
        for (items, n) in [(1usize, 1usize), (7, 2), (16, 4), (1000, 7)] {
            let parts = balanced_partition(items, n);
            assert_eq!(parts.first().map(|p| p.0), Some(0));
            assert_eq!(parts.last().map(|p| p.1), Some(items));
            for w in parts.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let sizes: Vec<usize> = parts.iter().map(|(a, b)| b - a).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{items}/{n}: {sizes:?}");
        }
    }
}

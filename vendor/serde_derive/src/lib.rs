//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real serde
//! derive macros are replaced by inert ones: they accept the same
//! syntax (including `#[serde(...)]` helper attributes) and expand to
//! nothing. No code in this workspace serializes at runtime yet; the
//! derives exist so the annotated types keep their public API
//! signature and can switch to the real serde without source changes.

use proc_macro::TokenStream;

/// Inert `#[derive(Serialize)]`: accepted and discarded.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `#[derive(Deserialize)]`: accepted and discarded.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

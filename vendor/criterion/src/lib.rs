//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this crate provides
//! a small, dependency-free benchmark harness with the subset of the
//! criterion API the workspace uses: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], the [`criterion_group!`] /
//! [`criterion_main!`] macros, and [`Bencher::iter`].
//!
//! Measurements are real: each benchmark is warmed up, then timed over
//! adaptively sized batches until a target measurement window is
//! reached, and the per-iteration time (plus element throughput, when
//! declared) is printed in a criterion-like one-line format. Results
//! are also exposed programmatically via [`Criterion::take_results`]
//! for harnesses (e.g. `perf_snapshot`) that want machine-readable
//! numbers without re-implementing the measurement loop.
//!
//! Benchmark name filters passed on the command line (`cargo bench --
//! <substr>`) are honoured as simple substring matches.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `"{function}/{parameter}"`.
    pub fn new(function: impl ToString, parameter: impl ToString) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function.to_string(), parameter.to_string()),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl ToString) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark path (`group/function/parameter`).
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub ns_per_iter: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
    /// Iterations actually measured.
    pub iterations: u64,
}

impl BenchResult {
    /// Elements processed per second, when element throughput was
    /// declared for the benchmark.
    #[must_use]
    pub fn elements_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) if self.ns_per_iter > 0.0 => {
                Some(n as f64 * 1e9 / self.ns_per_iter)
            }
            _ => None,
        }
    }
}

/// Passed to the measured closure; runs and times the routine.
pub struct Bencher<'a> {
    measurement: &'a mut Measurement,
}

impl Bencher<'_> {
    /// Measures `routine`, warming up first and then timing adaptively
    /// sized batches until the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, up to ~1/10 of the window.
        let warmup_budget = self.measurement.window / 10;
        let warmup_start = Instant::now();
        loop {
            black_box(routine());
            self.measurement.warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget || self.measurement.warmup_iters >= 100 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / self.measurement.warmup_iters.max(1) as u32;

        // Batch size so one batch is ~1/20 of the window.
        let batch = if per_iter.is_zero() {
            1024
        } else {
            ((self.measurement.window.as_nanos() / 20).saturating_div(per_iter.as_nanos().max(1)))
                .clamp(1, 1 << 24) as u64
        };

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measurement.window {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.measurement.elapsed = total;
        self.measurement.iters = iters;
    }
}

#[derive(Debug)]
struct Measurement {
    window: Duration,
    warmup_iters: u64,
    elapsed: Duration,
    iters: u64,
}

/// The top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    window: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            filter,
            window: Duration::from_millis(400),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: impl ToString,
        f: F,
    ) -> &mut Self {
        self.run_one(name.to_string(), None, f);
        self
    }

    /// Drains the results collected so far (for programmatic harnesses).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut m = Measurement {
            window: self.window,
            warmup_iters: 0,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut Bencher {
            measurement: &mut m,
        });
        let ns_per_iter = if m.iters == 0 {
            0.0
        } else {
            m.elapsed.as_nanos() as f64 / m.iters as f64
        };
        let result = BenchResult {
            name,
            ns_per_iter,
            throughput,
            iterations: m.iters,
        };
        report(&result);
        self.results.push(result);
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for criterion compatibility; the adaptive harness does
    /// not use a fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.full);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().full);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, f);
        self
    }

    /// Ends the group (a no-op in this harness; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Conversion into a [`BenchmarkId`], so group benchmark functions
/// accept both ids and plain strings.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

fn report(r: &BenchResult) {
    let time = human_time(r.ns_per_iter);
    match r.elements_per_sec() {
        Some(eps) => println!(
            "{:<56} time: {:>12}   thrpt: {:>14}",
            r.name,
            time,
            human_rate(eps)
        ),
        None => println!("{:<56} time: {:>12}", r.name, time),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(eps: f64) -> String {
    if eps >= 1e9 {
        format!("{:.3} Gelem/s", eps / 1e9)
    } else if eps >= 1e6 {
        format!("{:.3} Melem/s", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.3} Kelem/s", eps / 1e3)
    } else {
        format!("{eps:.1} elem/s")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        c.filter = None;
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].iterations > 0);
        assert!(results[0].ns_per_iter >= 0.0);
    }

    #[test]
    fn group_names_compose_and_throughput_reported() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        c.filter = None;
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(100));
            g.bench_with_input(BenchmarkId::new("f", "p"), &3u64, |b, &x| {
                b.iter(|| black_box(x) * 2)
            });
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results[0].name, "grp/f/p");
        assert!(results[0].elements_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.filter = Some("nomatch".to_string());
        c.bench_function("other", |b| b.iter(|| 1));
        assert!(c.take_results().is_empty());
    }
}

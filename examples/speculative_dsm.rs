//! Watch the two speculation triggers in action on micro-patterns:
//! FR (first read) on wide sharing, SWI (speculative write
//! invalidation) on a producer/consumer message buffer.
//!
//! ```sh
//! cargo run --release --example speculative_dsm
//! ```

use specdsm::prelude::*;
use specdsm::workloads::{ProducerConsumer, WideSharing};

fn run(policy: SpecPolicy, w: &dyn Workload) -> RunStats {
    let cfg = SystemConfig {
        machine: MachineConfig::paper_machine(),
        policy,
        ..SystemConfig::default()
    };
    System::new(cfg, w)
        .expect("workload fits the machine")
        .run()
}

fn report(name: &str, w: &dyn Workload) {
    println!("--- {name} ---");
    let base = run(SpecPolicy::Base, w);
    for policy in SpecPolicy::ALL {
        let s = run(policy, w);
        println!(
            "{:>8}: exec {:5.1}%  spec-read hits {:4.1}%  FR sent {:>6}  SWI sent {:>6}  \
             write-invals {:>5} ({} premature)",
            policy.to_string(),
            100.0 * s.exec_cycles as f64 / base.exec_cycles as f64,
            100.0 * s.spec_read_fraction(),
            s.spec.fr_sent,
            s.spec.swi_sent,
            s.spec.swi_inval_sent,
            s.spec.swi_inval_premature,
        );
    }
    println!();
}

fn main() {
    let machine = MachineConfig::paper_machine();

    // A producer fills a 64-block message buffer; 4 consumers read it.
    // SWI learns "writing block k+1 means block k is done", invalidates
    // early, and pushes the data to the predicted readers.
    let mut pc = ProducerConsumer::new(machine.clone(), 64, 4, 30);
    pc.compute = 4_000;
    report("producer/consumer buffer (SWI territory)", &pc);

    // One producer, fifteen staggered readers per block: the first
    // reader's request triggers pushes to the other fourteen.
    let wide = WideSharing::new(machine, 16, 30);
    report("wide read sharing (FR territory)", &wide);
}

//! Quickstart: simulate one application on the paper's three systems
//! (Base-DSM, FR-DSM, SWI-DSM) and print the Figure 9-style breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use specdsm::prelude::*;
use specdsm::workloads::{Em3d, Em3dParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The machine of the paper's Table 1: 16 nodes, ~418-cycle remote
    // round trip, remote-to-local ratio ~4.
    let machine = MachineConfig::paper_machine();
    println!(
        "machine: {} nodes, remote read RTT {} cycles (rtl {:.1})",
        machine.num_nodes,
        machine.remote_read_round_trip(),
        machine.remote_to_local_ratio()
    );

    // em3d: the paper's producer/consumer showcase for SWI.
    let app = Em3d::new(machine.clone(), Em3dParams::default_scale());

    let mut base_cycles = 0u64;
    for policy in SpecPolicy::ALL {
        let cfg = SystemConfig {
            machine: machine.clone(),
            policy,
            ..SystemConfig::default()
        };
        let stats = System::new(cfg, &app)?.run();
        if policy == SpecPolicy::Base {
            base_cycles = stats.exec_cycles;
        }
        println!(
            "{:>8}: {:>10} cycles ({:5.1}% of Base) — comp {:>9.0}, request wait {:>9.0}, \
             spec reads {:4.1}%",
            policy.to_string(),
            stats.exec_cycles,
            100.0 * stats.exec_cycles as f64 / base_cycles as f64,
            stats.avg_comp(),
            stats.avg_mem_wait(),
            100.0 * stats.spec_read_fraction(),
        );
        if let Some(pred) = stats.predictor {
            println!(
                "          online VMSP: accuracy {:.1}%, coverage {:.1}%",
                100.0 * pred.accuracy(),
                100.0 * pred.coverage()
            );
        }
    }
    Ok(())
}

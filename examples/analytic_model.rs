//! Explore the paper's analytic model (§5, Figure 6): when does a
//! speculative coherent DSM pay off?
//!
//! ```sh
//! cargo run --example analytic_model
//! ```

use specdsm::analytic::{figure6, ModelParams};

fn main() {
    // A single point: the paper's base configuration at 90% accuracy
    // on a half-communication-bound application.
    let m = ModelParams::paper_base(0.9);
    println!(
        "p = 0.9, n = 2, f = 1, rtl = 4, c = 0.5  →  speedup {:.2}×",
        m.speedup(0.5)
    );
    println!();

    // The break-even accuracy at c = 0.5: below this, speculate and lose.
    let break_even = (0..=100)
        .map(|i| i as f64 / 100.0)
        .find(|&p| ModelParams::paper_base(p).speedup(0.5) >= 1.0)
        .unwrap();
    println!("break-even prediction accuracy at c = 0.5: ~{break_even:.2}");
    println!("(the paper: \"high-accuracy predictors are the key\")");
    println!();

    // The full Figure 6, as four ASCII panels.
    for panel in figure6(10) {
        println!("-- {} --", panel.title);
        print!("{:>6}", "c");
        for s in &panel.series {
            print!("{:>18}", s.label);
        }
        println!();
        for i in 0..panel.series[0].points.len() {
            print!("{:>6.1}", panel.series[0].points[i].0);
            for s in &panel.series {
                print!("{:>18.2}", s.points[i].1);
            }
            println!();
        }
        println!();
    }
}

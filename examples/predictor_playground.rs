//! Feed a hand-built directory message stream — the exact
//! producer/consumer example of the paper's Figures 2–4 — to all three
//! predictors and watch what each one learns.
//!
//! ```sh
//! cargo run --example predictor_playground
//! ```

use specdsm::prelude::*;

fn main() {
    let block = BlockAddr(0x100);
    let (p1, p2, p3) = (ProcId(1), ProcId(2), ProcId(3));

    // The paper's running example: P3 writes, P1 and P2 read, with the
    // protocol acknowledgements interleaved (Figure 2). Every other
    // iteration the two invalidation acks swap arrival order — the race
    // the paper blames for Cosmos's perturbation.
    let phase = |flip: bool| {
        let (a1, a2) = if flip { (p2, p1) } else { (p1, p2) };
        vec![
            DirMsg::upgrade(p3),
            DirMsg::ack_inv(a1),
            DirMsg::ack_inv(a2),
            DirMsg::read(p1),
            DirMsg::read(p2),
            DirMsg::writeback(p3),
        ]
    };

    let mut predictors: Vec<Box<dyn SharingPredictor>> =
        PredictorKind::ALL.iter().map(|k| k.build(1, 16)).collect();

    for iter in 0..40 {
        for msg in phase(iter % 2 == 1) {
            for p in &mut predictors {
                p.observe(block, msg);
            }
        }
    }

    println!("producer/consumer with re-ordered acks, history depth 1:");
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "", "accuracy", "coverage", "pte/block", "bytes/block", "messages"
    );
    for p in &predictors {
        let s = p.stats();
        let st = p.storage();
        println!(
            "{:<8} {:>8.1}% {:>8.1}% {:>10.1} {:>12.2} {:>12}",
            p.kind().to_string(),
            100.0 * s.accuracy(),
            100.0 * s.coverage(),
            st.pte_per_block(),
            st.bytes_per_block(),
            s.seen,
        );
    }
    println!();
    println!("what to notice (paper §3):");
    println!(" * Cosmos predicts acks too — the swapped acks thrash its tables;");
    println!(" * MSP filters acks and recovers the request stream exactly;");
    println!(" * VMSP folds both reads into one vector and needs the fewest entries.");
}

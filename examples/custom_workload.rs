//! Build your own workload: implement [`Workload`], hand it to the
//! simulator, and compare the three systems on it.
//!
//! The example models a tiny bulk-synchronous pipeline: each processor
//! produces a row of blocks, the next processor consumes it.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use specdsm::prelude::*;
use specdsm::workloads::AddressSpace;

/// A ring pipeline: proc p writes its row, proc p+1 reads it next
/// iteration.
struct RingPipeline {
    machine: MachineConfig,
    rows: Vec<Vec<BlockAddr>>,
    iters: usize,
}

impl RingPipeline {
    fn new(machine: MachineConfig, row_blocks: usize, iters: usize) -> Self {
        let mut space = AddressSpace::new(machine.clone());
        let rows = space
            .alloc_partitioned(row_blocks)
            .into_iter()
            .map(|r| r.iter().collect())
            .collect();
        RingPipeline {
            machine,
            rows,
            iters,
        }
    }
}

impl Workload for RingPipeline {
    fn name(&self) -> &str {
        "ring-pipeline"
    }

    fn num_procs(&self) -> usize {
        self.machine.num_nodes
    }

    fn build_streams(&self) -> Vec<OpStream> {
        let n = self.num_procs();
        (0..n)
            .map(|p| {
                let prev = (p + n - 1) % n;
                let mine: Vec<BlockAddr> = self.rows[p].clone();
                let upstream: Vec<BlockAddr> = self.rows[prev].clone();
                let iters = self.iters;
                let mut ops = Vec::new();
                for _ in 0..iters {
                    for &b in &upstream {
                        ops.push(Op::Read(b));
                    }
                    ops.push(Op::Compute(2_000));
                    for &b in &mine {
                        ops.push(Op::Write(b));
                    }
                    ops.push(Op::Barrier);
                }
                Box::new(ops.into_iter()) as OpStream
            })
            .collect()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::paper_machine();
    let app = RingPipeline::new(machine.clone(), 24, 40);

    println!("ring pipeline on {} nodes:", machine.num_nodes);
    let mut base = 0u64;
    for policy in SpecPolicy::ALL {
        let cfg = SystemConfig {
            machine: machine.clone(),
            policy,
            ..SystemConfig::default()
        };
        let stats = System::new(cfg, &app)?.run();
        if policy == SpecPolicy::Base {
            base = stats.exec_cycles;
        }
        println!(
            "{:>8}: {:>9} cycles ({:5.1}%), c = {:.2}, SWI invals {} ({} premature)",
            policy.to_string(),
            stats.exec_cycles,
            100.0 * stats.exec_cycles as f64 / base as f64,
            stats.communication_ratio(),
            stats.spec.swi_inval_sent,
            stats.spec.swi_inval_premature,
        );
    }
    println!();
    println!("The stable write→read-sequence pattern is exactly what the");
    println!("predictors learn: SWI hides both the invalidation and the");
    println!("consumer's read latency.");
    Ok(())
}
